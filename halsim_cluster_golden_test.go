package halsim_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"halsim"
)

// goldenClusterRuns renders a battery of fleet runs into one text
// artifact, the cluster counterpart of goldenRuns: every numeric Result
// field printed with %v, compared byte-exactly against
// testdata/golden_cluster_runs.txt. The same fixture must hold at any
// shard count (serial, a few groups, one server per LP) and with
// telemetry or the flight recorder on — the fleet partition along fabric
// links is only admissible because it is bit-exact, and the observers
// are read-only by contract.
func goldenClusterRuns(t *testing.T, tel halsim.TelemetryConfig, shards int) string {
	t.Helper()
	var b strings.Builder
	line := func(name string, res halsim.Result) {
		fmt.Fprintf(&b, "%s: sent=%d completed=%d sentAll=%d completedAll=%d droppedAll=%d inflight=%d avg=%v max=%v p50=%v p99=%v p999=%v power=%v eff=%v snicShare=%v drop=%v wake=%d fwdTh=%v adj=%v\n",
			name, res.Sent, res.Completed, res.SentAll, res.CompletedAll, res.DroppedAll, res.InFlightEnd,
			res.AvgGbps, res.MaxGbps, res.P50us, res.P99us, res.P999us,
			res.AvgPowerW, res.EffGbpsPerW, res.SNICShare, res.DropFraction,
			res.Wakeups, res.FinalFwdTh, res.LBPAdjustments)
	}

	// Round-robin fleet under pressure: dispatch is blind, so the
	// per-server HLBs absorb the load and some servers drop.
	res, err := halsim.Run(
		halsim.Config{Mode: halsim.HAL, Fn: halsim.NAT, Seed: 7, Telemetry: tel, Shards: shards,
			Cluster: &halsim.ClusterConfig{Servers: 8}},
		halsim.RunConfig{Duration: 6 * halsim.Millisecond, RateGbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	line("fleet8/rr/HAL/NAT", res)

	// Power-of-two-choices fleet with a mid-run server blackout, drained:
	// the dispatcher's in-flight counts route around the dead server, the
	// conservation ledger still closes to zero.
	res, err = halsim.Run(
		halsim.Config{Mode: halsim.HAL, Fn: halsim.NAT, Seed: 7, Telemetry: tel, Shards: shards,
			Cluster: &halsim.ClusterConfig{Servers: 8, Dispatch: "p2c",
				Crashes: []halsim.ServerCrash{{Server: 3, At: 1 * halsim.Millisecond, For: 1 * halsim.Millisecond}}}},
		halsim.RunConfig{Duration: 4 * halsim.Millisecond, RateGbps: 120, Drain: true,
			PhaseMarks: []halsim.Time{1 * halsim.Millisecond, 2 * halsim.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	line("fleet8/p2c/crash", res)
	for i, ph := range res.Phases {
		fmt.Fprintf(&b, "  phase%d: [%v,%v) avg=%v p99=%v power=%v completed=%d\n",
			i, ph.Start, ph.End, ph.AvgGbps, ph.P99us, ph.AvgPowerW, ph.Completed)
	}

	// Non-HAL fleet (no LBP director) with a slower fabric: the sampler
	// path without control state, wire latency dominating the RTT.
	res, err = halsim.Run(
		halsim.Config{Mode: halsim.SNICOnly, Fn: halsim.NAT, Seed: 7, Telemetry: tel, Shards: shards,
			Cluster: &halsim.ClusterConfig{Servers: 5, WireNS: 10 * halsim.Microsecond, LinkGbps: 25}},
		halsim.RunConfig{Duration: 6 * halsim.Millisecond, RateGbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	line("fleet5/rr/SNICOnly/slowfabric", res)

	// A heavier function across a mid-size fleet.
	res, err = halsim.Run(
		halsim.Config{Mode: halsim.HAL, Fn: halsim.REM, Seed: 7, Telemetry: tel, Shards: shards,
			Cluster: &halsim.ClusterConfig{Servers: 12, Dispatch: "p2c"}},
		halsim.RunConfig{Duration: 6 * halsim.Millisecond, RateGbps: 150})
	if err != nil {
		t.Fatal(err)
	}
	line("fleet12/p2c/HAL/REM", res)

	// Fleet scale: 64 servers. At shards >= 4 this exercises many servers
	// per group LP; at shards 65+ one server per LP.
	res, err = halsim.Run(
		halsim.Config{Mode: halsim.HAL, Fn: halsim.NAT, Seed: 7, Telemetry: tel, Shards: shards,
			Cluster: &halsim.ClusterConfig{Servers: 64}},
		halsim.RunConfig{Duration: 3 * halsim.Millisecond, RateGbps: 400})
	if err != nil {
		t.Fatal(err)
	}
	line("fleet64/rr/HAL/NAT", res)

	// Datacenter scale: 1024 servers in 8 pods behind 4:1 oversubscribed
	// ToR uplinks, least-conn dispatch. At shards 65 the partition crosses
	// the old single-word bitset ceiling (65 worker LPs need two mask
	// words); pods span group LPs, so the ingress-side pod-uplink
	// serialization path is exercised under every engine.
	res, err = halsim.Run(
		halsim.Config{Mode: halsim.HAL, Fn: halsim.NAT, Seed: 7, Telemetry: tel, Shards: shards,
			Cluster: &halsim.ClusterConfig{Servers: 1024, Dispatch: "least-conn",
				Pods: 8, Oversub: 4}},
		halsim.RunConfig{Duration: halsim.Millisecond, RateGbps: 1024})
	if err != nil {
		t.Fatal(err)
	}
	line("fleet1024/least-conn/pods8", res)

	return b.String()
}

func compareClusterGolden(t *testing.T, got, label string) {
	t.Helper()
	path := filepath.Join("testdata", "golden_cluster_runs.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s diverged from golden fixture %s\n--- got ---\n%s\n--- want ---\n%s", label, path, got, want)
	}
}

// TestClusterGoldenDeterminism locks the fleet runner's numeric output to
// a committed fixture on the serial engine.
func TestClusterGoldenDeterminism(t *testing.T) {
	got := goldenClusterRuns(t, halsim.TelemetryConfig{}, 0)
	path := filepath.Join("testdata", "golden_cluster_runs.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	compareClusterGolden(t, got, "serial cluster battery")
}

// TestClusterGoldenParallel runs the battery with a handful of server
// groups per run (Shards 4 → ingress + 3 groups) against the SAME serial
// fixture.
func TestClusterGoldenParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("fixture is written by TestClusterGoldenDeterminism")
	}
	compareClusterGolden(t, goldenClusterRuns(t, halsim.TelemetryConfig{}, 4), "parallel (shards=4) cluster battery")
}

// TestClusterGoldenWideParallel maximizes the partition — up to one
// server per logical process (65 shards covers the 64-server run; smaller
// fleets cap at servers+1 workers) — and must still match the serial
// fixture byte-for-byte.
func TestClusterGoldenWideParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("fixture is written by TestClusterGoldenDeterminism")
	}
	compareClusterGolden(t, goldenClusterRuns(t, halsim.TelemetryConfig{}, 65), "wide parallel (shards=65) cluster battery")
}

// TestClusterGoldenTelemetryOn enables the timeline and registry across
// the serial battery: fleet telemetry is read-only, so the fixture holds.
func TestClusterGoldenTelemetryOn(t *testing.T) {
	if *updateGolden {
		t.Skip("fixture is written by TestClusterGoldenDeterminism")
	}
	compareClusterGolden(t, goldenClusterRuns(t, halsim.TelemetryConfig{Timeline: true}, 0), "telemetry-on cluster battery")
}

// TestClusterGoldenParallelProfiled turns every observer on — timeline,
// registry, flight recorder — over the parallel partition. The recorder
// watches per-server LP lanes and fabric-link slack without perturbing
// run-ahead planning; any divergence here means it did.
func TestClusterGoldenParallelProfiled(t *testing.T) {
	if *updateGolden {
		t.Skip("fixture is written by TestClusterGoldenDeterminism")
	}
	compareClusterGolden(t, goldenClusterRuns(t, halsim.TelemetryConfig{Timeline: true, Prof: true}, 4), "profiled parallel cluster battery")
}
