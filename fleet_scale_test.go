package halsim_test

import (
	"fmt"
	"testing"

	"halsim"
)

// fleetLine formats the determinism-relevant numeric fields of a fleet
// Result (everything except the engine label and wall-clock metadata).
func fleetLine(res halsim.Result) string {
	return fmt.Sprintf("sent=%d completed=%d sentAll=%d completedAll=%d droppedAll=%d inflight=%d avg=%v max=%v p50=%v p99=%v p999=%v power=%v eff=%v",
		res.Sent, res.Completed, res.SentAll, res.CompletedAll, res.DroppedAll, res.InFlightEnd,
		res.AvgGbps, res.MaxGbps, res.P50us, res.P99us, res.P999us, res.AvgPowerW, res.EffGbpsPerW)
}

// TestClusterShardClamping pins the worker-cap boundary of the fleet
// partition: a shard request the fleet can't host is clamped — to one
// group per server on small fleets, to the executor's 254-group ceiling
// on large ones — and the clamped run must still be byte-identical to the
// serial engine. The 300-server case lands exactly ON the ceiling (255
// worker LPs, the widened executor's maximum); the 254-server case
// partitions at exactly groups == maxGroups with no surplus.
func TestClusterShardClamping(t *testing.T) {
	cases := []struct {
		name    string
		servers int
		shards  int
		pods    int
	}{
		// Surplus shards on a small fleet: groups clamp to servers.
		{"fleet6-shards50", 6, 50, 0},
		// One past every ceiling: 600 shards ask for 599 groups, the
		// executor caps at 254 (= 255 workers with the ingress).
		{"fleet300-shards600", 300, 600, 3},
		// Exactly at the cap: 255 shards = 254 groups, no clamping.
		{"fleet254-shards255", 254, 255, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards int) string {
				res, err := halsim.Run(
					halsim.Config{Mode: halsim.HAL, Fn: halsim.NAT, Seed: 11, Shards: shards,
						Cluster: &halsim.ClusterConfig{Servers: tc.servers, Pods: tc.pods, Oversub: 4}},
					halsim.RunConfig{Duration: halsim.Millisecond, RateGbps: float64(tc.servers)})
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 && res.Engine != "parallel" {
					t.Fatalf("shards=%d fell back to engine %q", shards, res.Engine)
				}
				return fleetLine(res)
			}
			serial, clamped := run(0), run(tc.shards)
			if serial != clamped {
				t.Fatalf("clamped run diverged from serial:\nserial  %s\nclamped %s", serial, clamped)
			}
		})
	}
}
