package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"halsim/internal/telemetry"
)

func TestTelemetryMuxEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Set(reg.Gauge("halsim_test_up", "test gauge"), 1)
	srv := httptest.NewServer(telemetryMux(reg))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body, ctype := get("/buildinfo")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/buildinfo: %d content-type %q", code, ctype)
	}
	var info map[string]string
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("/buildinfo not JSON: %v\n%s", err, body)
	}
	if info["program"] != "halsim" || info["version"] == "" {
		t.Fatalf("/buildinfo payload wrong: %v", info)
	}

	for _, path := range []string{"/metrics", "/"} {
		if code, body, _ := get(path); code != http.StatusOK ||
			!strings.Contains(body, "halsim_test_up 1") {
			t.Fatalf("%s: %d missing registry exposition:\n%s", path, code, body)
		}
	}
}

func TestServeTelemetryLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Set(reg.Gauge("halsim_test_live", "test gauge"), 7)

	// A bad address fails fast, before any run starts.
	if _, err := serveTelemetry("256.0.0.1:0", reg); err == nil {
		t.Fatal("bad listen address must error")
	}

	stop, err := serveTelemetry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	// The announce line carries the resolved port; probe via the registry
	// handler path instead of parsing stderr: bind a second client to the
	// same mux through a test server is pointless — just shut down and make
	// sure the closure returns (listener freed, goroutine joined).
	stop()
}
