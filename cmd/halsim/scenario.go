package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"halsim/internal/cliutil"
	"halsim/internal/scenario"
)

// The scenario subcommands:
//
//	halsim run scenario.yaml [-seed N] [-shards N] [-report f.md] [-report-html f.html]
//	halsim validate scenario.yaml...
//
// run executes the scenario, prints the assertion verdicts, and exits 0
// only when every assertion held (1 on assertion failure, 2 on a scenario
// or plan validation error). validate checks files without running them.

// parseInterleaved parses args allowing flags before and after positional
// arguments (the flag package stops at the first positional), returning
// the positionals in order.
func parseInterleaved(fs *flag.FlagSet, args []string) []string {
	fs.Parse(args)
	var files []string
	for fs.NArg() > 0 {
		rest := fs.Args()
		files = append(files, rest[0])
		fs.Parse(rest[1:])
	}
	return files
}

// artifactPaths carries the telemetry export destinations shared with the
// flag-based path.
type artifactPaths struct {
	timelineCSV, timelineJSON, traceOut, metricsOut string
	prof                                            bool
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("halsim run", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: halsim run [flags] scenario.yaml\n\n")
		fs.PrintDefaults()
	}
	var (
		seed       = fs.Int64("seed", 0, "override the scenario's seed (0 = use the file's)")
		shards     = fs.Int("shards", 0, "override the scenario's shard count (0 = use the file's)")
		reportMD   = fs.String("report", "", "write the Markdown run report to this file ('-' for stdout)")
		reportHTML = fs.String("report-html", "", "write the HTML run report to this file")
		arts       artifactPaths
	)
	fs.StringVar(&arts.timelineCSV, "timeline", "", "write the per-tick time series as CSV to this file")
	fs.StringVar(&arts.timelineJSON, "timeline-json", "", "write the time series (plus latency buckets) as JSON")
	fs.StringVar(&arts.traceOut, "trace-out", "", "write a sampled packet-lifecycle trace (Chrome trace-event JSON)")
	fs.StringVar(&arts.metricsOut, "metrics-out", "", "write the final counter registry in Prometheus text format ('-' for stdout)")
	fs.BoolVar(&arts.prof, "prof", false, "record the parallel engine's flight recorder (needs shards > 1); adds the report's Parallel profile section")
	files := parseInterleaved(fs, args)
	if len(files) != 1 {
		fmt.Fprintf(os.Stderr, "halsim run: want exactly one scenario file, have %d\n\n", len(files))
		fs.Usage()
		os.Exit(cliutil.ExitUsage)
	}
	executeScenario(files[0], scenario.Overrides{Seed: *seed, Shards: *shards},
		*reportMD, *reportHTML, arts)
}

func validateCmd(args []string) {
	fs := flag.NewFlagSet("halsim validate", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: halsim validate scenario.yaml...\n")
	}
	files := parseInterleaved(fs, args)
	if len(files) == 0 {
		fs.Usage()
		os.Exit(cliutil.ExitUsage)
	}
	code := cliutil.ExitOK
	for _, path := range files {
		s, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halsim: %v\n", err)
			if c := cliutil.ExitCode(err); c > code {
				code = c
			}
			continue
		}
		// Load already validated (including a dry-run compile); compile
		// again only to report the effective schedule.
		comp, err := s.Compile(scenario.Overrides{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "halsim: %s: %v\n", path, err)
			if c := cliutil.ExitCode(err); c > code {
				code = c
			}
			continue
		}
		fmt.Printf("%s: ok — scenario %q: %d fault window(s), %d assertion(s)\n",
			path, s.Name, len(comp.FaultWindows), len(s.Assertions))
	}
	os.Exit(code)
}

// executeScenario runs one scenario file end to end: execute, print the
// verdicts, write reports and telemetry artifacts, exit by outcome.
func executeScenario(path string, ov scenario.Overrides, reportMD, reportHTML string, arts artifactPaths) {
	s, err := scenario.Load(path)
	if err != nil {
		cliutil.Fail("halsim", err)
	}
	// Telemetry export flags compose with the scenario: asking for an
	// artifact turns the corresponding collector on.
	if arts.timelineCSV != "" || arts.timelineJSON != "" {
		s.Run.Telemetry.Timeline = true
	}
	if arts.traceOut != "" && s.Run.Telemetry.TraceEvery == 0 {
		s.Run.Telemetry.TraceEvery = 64
	}
	if arts.prof {
		s.Run.Telemetry.Prof = true
	}

	start := time.Now()
	o, err := s.Execute(ov)
	if err != nil {
		cliutil.Fail("halsim", err)
	}
	res := o.Result

	fmt.Printf("scenario %q: %d fault window(s), %d assertion(s)\n",
		s.Name, len(o.Compiled.FaultWindows), len(s.Assertions))
	fmt.Printf("  delivered   %8.2f Gbps avg (offered %.2f), p99 %.1f us\n",
		res.AvgGbps, res.OfferedGbps, res.P99us)
	fmt.Printf("  power       %8.1f W avg -> %.4f Gbps/W\n", res.AvgPowerW, res.EffGbpsPerW)
	if o.Compiled.Plan != nil {
		fmt.Printf("  faults      %d events, %d crashes, %d requeued, %d fault drops\n",
			res.FaultEvents, res.CoreCrashes, res.Requeued, res.FaultDrops)
	}
	for _, c := range o.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		line := fmt.Sprintf("  %-4s  %s  (observed %s", verdict, c.Assertion.String(), c.ObservedText)
		if c.Detail != "" {
			line += "; " + c.Detail
		}
		fmt.Println(line + ")")
	}
	fmt.Printf("  [%d packets simulated in %v]\n", res.Sent, time.Since(start).Round(time.Millisecond))
	if arts.prof {
		printProfSummary(res, time.Since(start))
	}

	writeReport := func(path, what string, fn func(w *os.File) error) {
		if path == "" {
			return
		}
		f := os.Stdout
		if path != "-" {
			var err error
			if f, err = os.Create(path); err != nil {
				fail("-%s: %v", what, err)
			}
			defer f.Close()
		}
		if err := fn(f); err != nil {
			fail("-%s: %v", what, err)
		}
		if path != "-" {
			fmt.Printf("  wrote %s\n", path)
		}
	}
	writeReport(reportMD, "report", func(f *os.File) error { return o.WriteMarkdown(f) })
	writeReport(reportHTML, "report-html", func(f *os.File) error { return o.WriteHTML(f) })
	writeArtifacts(res, arts.timelineCSV, arts.timelineJSON, arts.traceOut, arts.metricsOut)

	if !o.Passed {
		failed := 0
		for _, c := range o.Checks {
			if !c.Pass {
				failed++
			}
		}
		fmt.Fprintf(os.Stderr, "halsim: scenario %q failed %d of %d assertions\n",
			s.Name, failed, len(o.Checks))
		os.Exit(cliutil.ExitFailure)
	}
}
