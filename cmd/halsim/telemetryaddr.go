package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"halsim/internal/telemetry"
	"halsim/internal/version"
)

// The -telemetry-addr endpoint: live Prometheus exposition during a run,
// plus the two probes a scraper's service discovery wants — /healthz for
// liveness and /buildinfo for what build is serving. The listener binds
// before the run starts (a bad address fails fast instead of racing the
// run) and shuts down cleanly after the final registry flush, so nothing
// keeps the process alive and the last scrape can still see end-of-run
// totals.

// telemetryMux routes the exposition endpoints over one registry.
func telemetryMux(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"program": "halsim",
			"version": version.String(),
		})
	})
	return mux
}

// serveTelemetry starts the exposition server on addr and returns a
// shutdown function the caller runs once the run's artifacts are written.
func serveTelemetry(addr string, reg *telemetry.Registry) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: telemetryMux(reg)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "halsim: -telemetry-addr: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "halsim: serving metrics on http://%s/metrics\n", ln.Addr())
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		<-done
	}, nil
}
