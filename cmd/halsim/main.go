// Command halsim runs a single SNIC-host simulation and prints its
// metrics — the interactive front door to the simulator.
//
// Examples:
//
//	halsim -mode hal -fn NAT -rate 80
//	halsim -mode snic -fn REM -rate 30 -duration 500ms
//	halsim -mode hal -fn Count -workload hadoop -cxl
//	halsim -mode slb -fn NAT -rate 80 -slb-cores 4 -slb-th 20
//	halsim -mode hal -fn NAT -rate 60 -fault core-crash -fault-cores 4
//	halsim -mode hal -fn NAT -rate 80 -timeline run.csv -trace-out run.trace.json
//	halsim -mode hal -fn NAT -rate 80 -duration 1s -shards 4
//	halsim run examples/scenarios/chaos-soak.yaml -report report.md
//	halsim validate examples/scenarios/*.yaml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"halsim/internal/cliutil"
	"halsim/internal/cluster"
	"halsim/internal/cxl"
	"halsim/internal/fault"
	"halsim/internal/nf"
	"halsim/internal/scenario"
	"halsim/internal/server"
	"halsim/internal/sim"
	"halsim/internal/telemetry"
	"halsim/internal/trace"
	"halsim/internal/version"
)

func main() {
	// Subcommand dispatch: `halsim run` and `halsim validate` take a
	// scenario file; anything else is the classic flag interface.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			runCmd(os.Args[2:])
			return
		case "validate":
			validateCmd(os.Args[2:])
			return
		}
	}

	var (
		modeFlag = flag.String("mode", "hal", "host | snic | hal | slb")
		fnFlag   = flag.String("fn", "NAT", "function: KVS Count EMA NAT BM25 KNN Bayes REM Crypto Comp")
		fnCfg    = flag.String("fn-config", "", "function configuration (e.g. tea/lite for REM)")
		pipe     = flag.String("pipeline", "", "optional second function fed by the first")
		rate     = flag.Float64("rate", 40, "offered load in Gbps (ignored with -workload)")
		workload = flag.String("workload", "", "web | cache | hadoop datacenter trace")
		duration = flag.Duration("duration", 300*time.Millisecond, "simulated duration")
		seed     = flag.Int64("seed", 1, "simulation seed")
		shards   = flag.Int("shards", 0, "run on the conservative-parallel engine with this many shards (0/1 = serial; results are byte-identical)")
		profFlag = flag.Bool("prof", false, "record the parallel engine's flight recorder (needs -shards > 1): window spans, stall attribution, lookahead-slack series")
		useCXL   = flag.Bool("cxl", false, "attach the SNIC over CXL (coherent shared state)")

		servers  = flag.Int("servers", 0, "fleet size: run N full servers behind one shared ingress and a modeled ToR fabric (0 = single server)")
		dispatch = flag.String("dispatch", "rr", "fleet ingress dispatch: rr | p2c | least-conn (with -servers)")
		wireLat  = flag.Duration("wire", 2*time.Microsecond, "one-way ToR wire+switch latency (with -servers)")
		linkGbps = flag.Float64("link-gbps", 100, "per-server fabric link bandwidth in Gbps (with -servers)")
		pods     = flag.Int("pods", 0, "split the fleet into N pods behind oversubscribable ToR uplinks (0/1 = flat star; with -servers)")
		oversub  = flag.Float64("oversub", 1, "pod uplink oversubscription ratio (with -pods)")
		spineLat = flag.Duration("spine-wire", 0, "one-way spine wire+switch latency between ingress and pod ToRs (default: -wire; with -pods)")
		slbCores = flag.Int("slb-cores", 4, "SLB forwarding cores (slb mode)")
		slbTh    = flag.Float64("slb-th", 20, "SLB FwdTh in Gbps (slb mode)")
		function = flag.Bool("functional", false, "execute the real network function per packet")

		faultKind  = flag.String("fault", "", "inject a fault: core-crash | rx-drop | telemetry | accel-degrade")
		faultAt    = flag.Duration("fault-at", 100*time.Millisecond, "fault onset")
		faultFor   = flag.Duration("fault-for", 100*time.Millisecond, "fault duration")
		faultCores = flag.Int("fault-cores", 2, "SNIC cores to crash (core-crash fault)")
		faultDrop  = flag.Float64("fault-drop", 0.2, "drop probability (rx-drop fault)")

		timelineCSV  = flag.String("timeline", "", "write the per-tick time series as CSV to this file")
		timelineJSON = flag.String("timeline-json", "", "write the time series (plus latency buckets) as JSON")
		timelinePer  = flag.Duration("timeline-period", 0, "timeline sampling period (default 100us)")
		traceOut     = flag.String("trace-out", "", "write a sampled packet-lifecycle trace (Chrome trace-event JSON, loadable in Perfetto)")
		traceEvery   = flag.Int("trace-every", 64, "trace 1-in-N packets (with -trace-out)")
		metricsOut   = flag.String("metrics-out", "", "write the final counter registry in Prometheus text format ('-' for stdout)")
		telAddr      = flag.String("telemetry-addr", "", "serve live /metrics on this address while the run executes")
		reportMD     = flag.String("report", "", "scenario runs: write the Markdown run report to this file ('-' for stdout)")
		reportHTML   = flag.String("report-html", "", "scenario runs: write the HTML run report to this file")
		showVersion  = flag.Bool("version", false, "print the build commit and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("halsim %s\n", version.String())
		return
	}

	// A positional argument is a scenario file — `halsim scenario.yaml` is
	// shorthand for `halsim run scenario.yaml`. The file owns the run
	// configuration, so simulation and fault flags alongside it are a usage
	// error, not a silent precedence rule; only -seed and -shards act as
	// documented overrides, and telemetry/report export flags compose.
	if flag.NArg() > 0 {
		if flag.NArg() > 1 {
			usageErr("want one scenario file, have %d arguments (%v)", flag.NArg(), flag.Args())
		}
		var conflicts []string
		ov := scenario.Overrides{}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mode", "fn", "fn-config", "pipeline", "rate", "workload", "duration",
				"cxl", "slb-cores", "slb-th", "functional",
				"fault", "fault-at", "fault-for", "fault-cores", "fault-drop":
				conflicts = append(conflicts, "-"+f.Name)
			case "seed":
				ov.Seed = *seed
			case "shards":
				ov.Shards = *shards
			}
		})
		if len(conflicts) > 0 {
			usageErr("%s already defines the run; drop %s (use -seed/-shards to override, or edit the scenario)",
				flag.Arg(0), strings.Join(conflicts, ", "))
		}
		executeScenario(flag.Arg(0), ov, *reportMD, *reportHTML, artifactPaths{
			timelineCSV:  *timelineCSV,
			timelineJSON: *timelineJSON,
			traceOut:     *traceOut,
			metricsOut:   *metricsOut,
			prof:         *profFlag,
		})
		return
	}
	if *reportMD != "" || *reportHTML != "" {
		usageErr("-report/-report-html need a scenario file (see `halsim run`)")
	}

	cfg := server.Config{FnConfig: *fnCfg, Seed: *seed, Functional: *function, Shards: *shards}
	switch strings.ToLower(*modeFlag) {
	case "host":
		cfg.Mode = server.HostOnly
	case "snic":
		cfg.Mode = server.SNICOnly
	case "hal":
		cfg.Mode = server.HAL
	case "slb":
		cfg.Mode = server.SLB
		cfg.SLBCores = *slbCores
		cfg.SLBFwdThGbps = *slbTh
	default:
		usageErr("unknown mode %q (want host, snic, hal, or slb)", *modeFlag)
	}
	fn, err := nf.ParseID(*fnFlag)
	if err != nil {
		usageErr("%v", err)
	}
	cfg.Fn = fn
	if *pipe != "" {
		p, err := nf.ParseID(*pipe)
		if err != nil {
			usageErr("%v", err)
		}
		cfg.PipelineOn = true
		cfg.Pipeline = p
	}
	if *useCXL {
		cfg.Fabric = cxl.NewFabric(cxl.CXL, 2)
	}
	if *servers > 0 {
		if *faultKind != "" {
			usageErr("-fault drives a single server; fleet runs take server-crash events from a scenario file")
		}
		cfg.Cluster = &server.ClusterConfig{
			Servers:     *servers,
			Dispatch:    strings.ToLower(*dispatch),
			WireNS:      sim.Duration(*wireLat),
			LinkGbps:    *linkGbps,
			Pods:        *pods,
			Oversub:     *oversub,
			SpineWireNS: sim.Duration(*spineLat),
		}
		// Bad flag values (fleet size, dispatch policy, negative wire/link)
		// are usage errors like any other flag, not runtime failures.
		if _, err := cfg.Cluster.WithDefaults(sim.Duration(*duration)); err != nil {
			usageErr("%v", err)
		}
	}

	// Observability: any telemetry output flag opts the run into the
	// corresponding collector; with none of them the layer stays off.
	cfg.Telemetry.Prof = *profFlag
	if *timelineCSV != "" || *timelineJSON != "" {
		cfg.Telemetry.Timeline = true
		cfg.Telemetry.TimelinePeriod = sim.Duration(*timelinePer)
	}
	if *traceOut != "" {
		cfg.Telemetry.TraceEvery = *traceEvery
		if *traceEvery < 1 {
			usageErr("-trace-every must be >= 1, got %d", *traceEvery)
		}
	}
	if *telAddr != "" || *metricsOut != "" {
		// A live endpoint or a text dump needs the registry even when no
		// timeline was asked for; a shared registry serves both.
		if cfg.Telemetry.Registry == nil {
			cfg.Telemetry.Registry = telemetry.NewRegistry()
		}
		if !cfg.Telemetry.Enabled() {
			cfg.Telemetry.Timeline = true // drives the per-tick sampler
		}
	}
	var stopTelemetry func()
	if *telAddr != "" {
		var err error
		stopTelemetry, err = serveTelemetry(*telAddr, cfg.Telemetry.Registry)
		if err != nil {
			fail("-telemetry-addr: %v", err)
		}
	}

	rc := server.RunConfig{Duration: sim.Duration(*duration), RateGbps: *rate}
	if *workload != "" {
		w, err := trace.ParseWorkload(strings.ToLower(*workload))
		if err != nil {
			usageErr("%v", err)
		}
		rc.Workload = &w
	}

	if *faultKind != "" {
		from, until := sim.Duration(*faultAt), sim.Duration(*faultAt+*faultFor)
		// A window reaching the end of the run never clears: recovery events
		// land at the finish line and there is no "after" phase.
		if until > rc.Duration {
			until = rc.Duration
		}
		plan := fault.NewPlan(*seed)
		switch strings.ToLower(*faultKind) {
		case "core-crash":
			plan.CrashSNICCores(from, until, *faultCores)
		case "rx-drop":
			plan.DropSNICRx(from, until, *faultDrop)
		case "telemetry":
			plan.BlackoutTelemetry(from, until)
		case "accel-degrade":
			plan.DegradeSNICAccel(from, until)
		default:
			usageErr("unknown fault %q (want core-crash, rx-drop, telemetry, or accel-degrade)", *faultKind)
		}
		// Same validate-then-exit(2) chokepoint as halbench and the
		// scenario path: a malformed plan is a usage error everywhere.
		cliutil.CheckPlan("halsim", plan)
		cfg.Faults = plan
		// Mark the fault window so the report can show before/during/after,
		// and drain so the packet-conservation audit closes exactly. A window
		// running to the end of the run has no "after" phase.
		rc.PhaseMarks = []sim.Time{from, until}
		if until >= rc.Duration {
			rc.PhaseMarks = []sim.Time{from}
		}
		rc.Drain = true
	}

	start := time.Now()
	runFn := server.Run
	if cfg.Cluster != nil {
		runFn = cluster.Run
	}
	res, err := runFn(cfg, rc)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("mode=%v fn=%v", res.Mode, res.Fn)
	if cfg.Cluster != nil {
		fmt.Printf(" servers=%d dispatch=%s", cfg.Cluster.Servers, cfg.Cluster.Dispatch)
	}
	if cfg.PipelineOn {
		fmt.Printf("+%v", cfg.Pipeline)
	}
	if *shards > 1 {
		// Surface fallbacks: a Shards request the partition cannot host
		// prints "serial (reason)" here instead of silently differing in
		// wall time only.
		fmt.Printf(" engine=%s", res.Engine)
	}
	fmt.Println()
	fmt.Printf("  offered     %8.2f Gbps\n", res.OfferedGbps)
	fmt.Printf("  delivered   %8.2f Gbps avg, %.2f Gbps best 10ms window\n", res.AvgGbps, res.MaxGbps)
	fmt.Printf("  latency     p50 %.1f us, p99 %.1f us, p99.9 %.1f us\n", res.P50us, res.P99us, res.P999us)
	fmt.Printf("  power       %8.1f W avg -> %.4f Gbps/W\n", res.AvgPowerW, res.EffGbpsPerW)
	fmt.Printf("              %8.1f W floor + %.1f W host + %.1f W snic\n", res.IdleW, res.HostActiveW, res.SNICActiveW)
	fmt.Printf("  drops       %8.2f %%\n", res.DropFraction*100)
	fmt.Printf("  snic share  %8.1f %% of delivered bytes\n", res.SNICShare*100)
	if res.Mode == server.HAL {
		fmt.Printf("  fwd_th      %8.1f Gbps final (%d LBP adjustments, %d host wakeups)\n",
			res.FinalFwdTh, res.LBPAdjustments, res.Wakeups)
	}
	if res.CoherenceRemote > 0 {
		fmt.Printf("  coherence   %8d remote transfers/invalidations\n", res.CoherenceRemote)
	}
	if *faultKind != "" {
		fmt.Printf("  faults      %d events, %d crashes, %d requeued, %d fault drops, %d LBP holds\n",
			res.FaultEvents, res.CoreCrashes, res.Requeued, res.FaultDrops, res.LBPHolds)
		if res.FailoverTicks >= 0 {
			fmt.Printf("  failover    Fwd_Th snapped in %d LBP ticks\n", res.FailoverTicks)
		}
		for i, ph := range res.Phases {
			names := []string{"before", "during", "after "}
			name := fmt.Sprintf("phase%d", i)
			if len(res.Phases) <= 3 && i < len(names) {
				name = names[i]
			}
			fmt.Printf("  %s      %8.2f Gbps, p99 %.1f us, %.1f W\n", name, ph.AvgGbps, ph.P99us, ph.AvgPowerW)
		}
		fmt.Printf("  ledger      %d sent = %d completed + %d dropped (in-flight %d)\n",
			res.SentAll, res.CompletedAll, res.DroppedAll, res.InFlightEnd)
	}
	fmt.Printf("  [%d packets simulated in %v]\n", res.Sent, time.Since(start).Round(time.Millisecond))
	if *profFlag {
		printProfSummary(res, time.Since(start))
	}

	writeArtifacts(res, *timelineCSV, *timelineJSON, *traceOut, *metricsOut)
	if stopTelemetry != nil {
		stopTelemetry()
	}
}

// printProfSummary prints the flight recorder's console digest: stall
// attribution, slack utilization, and the wall-clock split (the one place
// the nondeterministic wall numbers surface).
func printProfSummary(res server.Result, wall time.Duration) {
	rec := res.Prof
	if rec == nil {
		fmt.Printf("  prof        no recording (engine=%s; -prof needs the parallel engine, use -shards > 1)\n", res.Engine)
		return
	}
	fmt.Printf("  prof        %d rounds", rec.Rounds)
	if e, ok := rec.BindingLink(); ok {
		fmt.Printf(", binding link %s->%s (%d windows, %.1f%% of paced)", e.SrcName, e.DstName, e.Windows, e.Share*100)
	}
	fmt.Println()
	for i := 0; i < rec.NumLanes(); i++ {
		l := rec.LaneAt(i)
		fmt.Printf("    lp %-5s %d windows (%.1f%% paced), %d parks, %d batches/%d msgs (max %d)\n",
			l.Name(), l.WindowCount, rec.PacedShare(i)*100, l.Parks, l.Injects, l.InjectedMsgs, l.MaxBatch)
	}
	for _, ls := range rec.Links() {
		util, decl := "-", "unconstrained"
		if u := ls.Utilization(); u > 0 {
			util = fmt.Sprintf("%.0f%%", u*100)
		}
		if ls.Declared >= 0 {
			decl = ls.Declared.String()
		}
		fmt.Printf("    link %s->%s declared %s, observed floor %v, %d tightenings, utilization %s\n",
			ls.SrcName, ls.DstName, decl, ls.Floor, len(ls.Points), util)
	}
	if wall > 0 {
		barrier := float64(rec.BarrierWallNS) / float64(wall.Nanoseconds()) * 100
		plan := float64(rec.PlanWallNS) / float64(wall.Nanoseconds()) * 100
		fmt.Printf("    wall: %.1f%% barriers, %.1f%% planning, latch wait %v (nondeterministic)\n",
			barrier, plan, time.Duration(rec.LatchWaitTotalNS()).Round(time.Microsecond))
	}
	for _, wl := range rec.Wheels() {
		fmt.Printf("    wheel %-5s %d cascades, %d overflow, slab high water %d\n",
			wl.Name, wl.Stats.Cascades, wl.Stats.Overflow, wl.Stats.SlabHighWater)
	}
}

// writeArtifacts exports the run's telemetry artifacts to the requested
// files ("-" means stdout).
func writeArtifacts(res server.Result, csvPath, jsonPath, tracePath, metricsPath string) {
	write := func(path, what string, fn func(w io.Writer) error) {
		if path == "" {
			return
		}
		f := os.Stdout
		if path != "-" {
			var err error
			f, err = os.Create(path)
			if err != nil {
				fail("-%s: %v", what, err)
			}
			defer f.Close()
		}
		if err := fn(f); err != nil {
			fail("-%s: %v", what, err)
		}
		if path != "-" {
			fmt.Printf("  wrote %s\n", path)
		}
	}
	if res.Timeline != nil {
		write(csvPath, "timeline", res.Timeline.WriteCSV)
		write(jsonPath, "timeline-json", res.Timeline.WriteJSON)
	}
	switch {
	case res.Trace != nil && res.Prof != nil:
		// A profiled run exports the combined document: packet spans with
		// LP attribution plus the recorder's per-LP window lanes.
		write(tracePath, "trace-out", func(w io.Writer) error {
			return telemetry.WriteProfTrace(w, res.Trace, res.Prof)
		})
	case res.Trace != nil:
		write(tracePath, "trace-out", res.Trace.WriteTrace)
	case res.Prof != nil:
		// Cluster runs have no packet tracer; the document carries the
		// recorder's per-server lp:* lanes alone.
		write(tracePath, "trace-out", func(w io.Writer) error {
			return telemetry.WriteProfTrace(w, nil, res.Prof)
		})
	}
	if res.Metrics != nil {
		write(metricsPath, "metrics-out", res.Metrics.WriteText)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "halsim: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports a bad invocation: the message, then the flag summary,
// then exit status 2 (the flag package's own convention for usage errors).
func usageErr(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "halsim: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
