package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"halsim/internal/experiments"
	"halsim/internal/nf"
	"halsim/internal/server"
	"halsim/internal/sim"
	"halsim/internal/trace"
)

// benchResult is one measurement row of the BENCH_*.json snapshot.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchSnapshot is the machine-readable artifact the CI bench job uploads;
// diffing two snapshots is the regression check for the hot path.
type benchSnapshot struct {
	Timestamp string `json:"timestamp"`
	Quick     bool   `json:"quick"`
	Seed      int64  `json:"seed"`
	// Repeat is how many times each benchmark was measured; every result
	// row is the fastest of those runs (absent in pre-min-of-N snapshots).
	Repeat    int    `json:"repeat,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Execution-environment metadata: snapshots taken on different machines
	// or engine modes measure different things, so the -baseline gate
	// refuses to compare them silently. GoMaxProcs is the effective
	// parallelism (container quotas included); Shards and Engine say which
	// simulation engine ran ("serial" for 0/1 shards, "parallel" above).
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// NumCPU is the machine's logical CPU count, recorded so a snapshot
	// taken with an inflated GOMAXPROCS on a starved quota (say 4 on a
	// 1-CPU container) is honest about what actually ran concurrently.
	NumCPU int    `json:"numcpu,omitempty"`
	Shards int    `json:"shards,omitempty"`
	Engine string `json:"engine,omitempty"`
	// SlackFloors records, for parallel snapshots, the per-link observed
	// lookahead-slack floors (ns) of a short profiled HAL/NAT run — the
	// executor's ObservedSlack, keyed "src->dst". Deterministic per shard
	// count, so a drift between snapshots means the partition or the
	// topology declaration changed; -baseline prints the deltas but never
	// gates on them.
	SlackFloors map[string]int64 `json:"slack_floors,omitempty"`
	Results     []benchResult    `json:"results"`
}

// engineLabel names the engine a shard count selects.
func engineLabel(shards int) string {
	if shards > 1 {
		return "parallel"
	}
	return "serial"
}

// namedBench is one sentinel: a display/snapshot name and its body.
type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// measureBest runs one benchmark repeat times under testing.Benchmark and
// returns the fastest row: min-of-N is the standard noise floor for a
// shared CI machine, so the -baseline gate compares best-case against
// best-case instead of failing on scheduler jitter.
func measureBest(nb namedBench, repeat int) (benchResult, error) {
	var best benchResult
	for rep := 0; rep < repeat; rep++ {
		r := testing.Benchmark(nb.fn)
		if r.N == 0 {
			return best, fmt.Errorf("bench %s: benchmark failed", nb.name)
		}
		br := benchResult{
			Name:        nb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if rep == 0 || br.NsPerOp < best.NsPerOp {
			best = br
		}
	}
	return best, nil
}

// runBenchSuite measures the regression-sentinel benchmarks (the three
// ModeNAT80G modes and the Table V matrix, mirroring bench_test.go) with
// testing.Benchmark and writes a JSON snapshot next to the ASCII summary.
// Each benchmark is measured repeat times and the snapshot keeps the
// fastest ns/op (and that run's B/op and allocs/op). quick shrinks
// simulated durations so a CI run finishes in seconds. With a baseline
// snapshot the run also prints per-benchmark deltas and fails on a
// regression beyond tol (the -baseline-tolerance flag, as a fraction).
func runBenchSuite(opt experiments.Options, quick bool, repeat int, prof bool, tol float64, outPath, baselinePath string) error {
	if repeat < 1 {
		repeat = 1
	}
	runDur := 20 * sim.Millisecond
	t5 := opt
	t5.Duration, t5.TraceDuration = 20*sim.Millisecond, 40*sim.Millisecond
	if quick {
		runDur = 5 * sim.Millisecond
		t5.Duration, t5.TraceDuration = 5*sim.Millisecond, 10*sim.Millisecond
	}

	modeBench := func(mode server.Mode, shards int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := server.Run(
					server.Config{Mode: mode, Fn: nf.NAT, Seed: opt.Seed, Shards: shards},
					server.RunConfig{Duration: runDur, RateGbps: 80})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed == 0 {
					b.Fatal("no packets completed")
				}
			}
		}
	}
	table5Bench := func(o experiments.Options) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := experiments.Table5(o)
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		}
	}
	t5Serial := t5
	t5Serial.Shards = 0
	benches := []namedBench{
		{"ModeNAT80G/SNIC", modeBench(server.SNICOnly, 0)},
		{"ModeNAT80G/Host", modeBench(server.HostOnly, 0)},
		{"ModeNAT80G/HAL", modeBench(server.HAL, 0)},
		{"Table5", table5Bench(t5Serial)},
	}
	// A sharded invocation measures BOTH engines: the serial sentinels above
	// keep gating hot-path regressions like-for-like, and the /shardsN rows
	// record the parallel engine on the same workloads, so one snapshot
	// carries the serial baseline and the speedup (or, on a starved CPU
	// quota, the coordination overhead) side by side.
	if opt.Shards > 1 {
		benches = append(benches,
			namedBench{fmt.Sprintf("ModeNAT80G/HAL/shards%d", opt.Shards), modeBench(server.HAL, opt.Shards)},
			namedBench{fmt.Sprintf("Table5/shards%d", opt.Shards), table5Bench(t5)})
	}

	snap := benchSnapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Quick:      quick,
		Seed:       opt.Seed,
		Repeat:     repeat,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     opt.Shards,
		Engine:     engineLabel(opt.Shards),
	}
	for _, nb := range benches {
		best, err := measureBest(nb, repeat)
		if err != nil {
			return err
		}
		snap.Results = append(snap.Results, best)
		fmt.Printf("%-18s %6d iter  %14.0f ns/op  %12d B/op  %10d allocs/op  (min of %d)\n",
			best.Name, best.Iterations, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, repeat)
	}

	// Parallel snapshots also carry the observed slack floors of a short
	// profiled HAL/NAT run (satellite of the flight recorder): a drift in
	// these deterministic floors between commits means the LP partition or
	// topology declaration changed, which wall-clock rows can't show.
	if opt.Shards > 1 {
		floors, err := harvestSlackFloors(opt, runDur)
		if err != nil {
			return fmt.Errorf("bench: slack floors: %w", err)
		}
		snap.SlackFloors = floors
	} else if prof {
		fmt.Println("prof: no recording — the flight recorder needs the parallel engine, use -shards > 1")
	}
	if prof && opt.Shards > 1 {
		if err := printBenchProf(opt, runDur); err != nil {
			return fmt.Errorf("bench: prof: %w", err)
		}
	}

	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if baselinePath != "" {
		return compareBaseline(snap, baselinePath, tol)
	}
	return nil
}

// profiledRun executes one flight-recorded run at the snapshot's shard
// count and returns the result (Result.Prof carries the recorder).
func profiledRun(cfg server.Config, rc server.RunConfig) (server.Result, time.Duration, error) {
	cfg.Telemetry.Prof = true
	start := time.Now()
	res, err := server.Run(cfg, rc)
	return res, time.Since(start), err
}

// harvestSlackFloors runs the HAL/NAT sentinel briefly with the recorder on
// and returns the observed per-link slack floors, keyed "src->dst" in ns.
func harvestSlackFloors(opt experiments.Options, runDur sim.Time) (map[string]int64, error) {
	res, _, err := profiledRun(
		server.Config{Mode: server.HAL, Fn: nf.NAT, Seed: opt.Seed, Shards: opt.Shards},
		server.RunConfig{Duration: runDur, RateGbps: 80})
	if err != nil {
		return nil, err
	}
	if res.Prof == nil {
		return nil, nil // fell back to serial: nothing to record
	}
	floors := make(map[string]int64)
	for _, ls := range res.Prof.Links() {
		if ls.Floor >= 0 {
			floors[ls.SrcName+"->"+ls.DstName] = int64(ls.Floor)
		}
	}
	return floors, nil
}

// printBenchProf runs the flight recorder over the bench sentinels — the
// HAL/NAT 80G constant-rate sentinel and a Table V representative (HAL
// running Count over the hadoop trace) — and prints each run's stall
// attribution, slack utilization, and wall-clock split.
func printBenchProf(opt experiments.Options, runDur sim.Time) error {
	type sentinel struct {
		name string
		cfg  server.Config
		rc   server.RunConfig
	}
	sentinels := []sentinel{{
		name: "HAL/NAT/80G",
		cfg:  server.Config{Mode: server.HAL, Fn: nf.NAT, Seed: opt.Seed, Shards: opt.Shards},
		rc:   server.RunConfig{Duration: runDur, RateGbps: 80},
	}}
	if w, err := trace.ParseWorkload("hadoop"); err == nil {
		sentinels = append(sentinels, sentinel{
			name: "HAL/hadoop/Count",
			cfg:  server.Config{Mode: server.HAL, Fn: nf.Count, Seed: opt.Seed, Shards: opt.Shards},
			rc:   server.RunConfig{Duration: 2 * runDur, Workload: &w},
		})
	}
	for _, s := range sentinels {
		res, wall, err := profiledRun(s.cfg, s.rc)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		rec := res.Prof
		if rec == nil {
			fmt.Printf("prof %s: no recording (engine=%s)\n", s.name, res.Engine)
			continue
		}
		var windows, parks, batches, msgs uint64
		for i := 0; i < rec.NumLanes(); i++ {
			l := rec.LaneAt(i)
			windows += l.WindowCount
			parks += l.Parks
			batches += l.Injects
			msgs += l.InjectedMsgs
		}
		fmt.Printf("prof %s: %d rounds, %d windows, %d parks, %d batches/%d msgs\n",
			s.name, rec.Rounds, windows, parks, batches, msgs)
		for i, e := range rec.TopStallEdges() {
			if i >= 3 {
				break
			}
			fmt.Printf("  stall edge %d: %s->%s  %d windows (%.1f%% of paced)\n",
				i+1, e.SrcName, e.DstName, e.Windows, e.Share*100)
		}
		for _, ls := range rec.Links() {
			if u := ls.Utilization(); u > 0 {
				fmt.Printf("  slack %s->%s: declared %v of %v observed floor (%.0f%% utilized)\n",
					ls.SrcName, ls.DstName, ls.Declared, ls.Floor, u*100)
			}
		}
		if wall > 0 {
			fmt.Printf("  wall: %.1f%% barriers, %.1f%% planning, latch wait %v of %v (nondeterministic)\n",
				float64(rec.BarrierWallNS)/float64(wall.Nanoseconds())*100,
				float64(rec.PlanWallNS)/float64(wall.Nanoseconds())*100,
				time.Duration(rec.LatchWaitTotalNS()).Round(time.Microsecond),
				wall.Round(time.Millisecond))
		}
		for _, wl := range rec.Wheels() {
			fmt.Printf("  wheel %s: %d cascades, %d overflow, slab high water %d\n",
				wl.Name, wl.Stats.Cascades, wl.Stats.Overflow, wl.Stats.SlabHighWater)
		}
	}
	return nil
}

// compareBaseline diffs the fresh snapshot against a stored one: one line
// per shared benchmark with the ns/op and allocs/op deltas, then an error
// if any ns/op grew beyond tol (the -baseline-tolerance flag, as a
// fraction). Allocation growth on the pinned-zero benchmarks is always a
// failure — the zero-alloc hot path is a correctness property here, not a
// performance preference — and /shardsN rows additionally gate allocs/op
// growth beyond tol, so the pooled cross-LP path can't silently regress
// behind wall-clock noise.
func compareBaseline(cur benchSnapshot, baselinePath string, tol float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", baselinePath, err)
	}
	if base.Quick != cur.Quick {
		fmt.Printf("note: baseline quick=%v, this run quick=%v — deltas are indicative only\n",
			base.Quick, cur.Quick)
	}
	// Engine-mode mismatch: a serial baseline against a parallel run (or
	// different shard counts) compares two different execution strategies,
	// so the regression thresholds are meaningless — a /shardsN row diffed
	// against a serial measurement of the same sentinel "regresses" by the
	// coordination overhead, and a serial row vanishing behind a parallel
	// baseline hides real regressions. That used to be a warning; it is now
	// a hard failure, because a warning scrolled past in CI output is a
	// silent comparison. Cross-engine speedup lives inside ONE snapshot
	// (the serial sentinels next to the /shardsN rows), never across two.
	// Old snapshots predate the engine field; treat absence as serial.
	baseEngine, curEngine := base.Engine, cur.Engine
	if baseEngine == "" {
		baseEngine = engineLabel(base.Shards)
	}
	if curEngine == "" {
		curEngine = engineLabel(cur.Shards)
	}
	if baseEngine != curEngine || base.Shards != cur.Shards {
		return fmt.Errorf("-baseline %s: engine mode mismatch — baseline %s (shards=%d), this run %s (shards=%d); rerun with matching -shards (cross-engine speedup is read off the /shardsN rows inside one snapshot, not by diffing snapshots)",
			baselinePath, baseEngine, base.Shards, curEngine, cur.Shards)
	}
	// GOMAXPROCS is part of what a parallel measurement measures: the same
	// binary on the same machine is a different experiment at 1 proc than
	// at 4. For parallel snapshots a mismatch fails; serial rows are
	// single-threaded, so there it stays an advisory note.
	if base.GoMaxProcs != 0 && base.GoMaxProcs != cur.GoMaxProcs {
		if curEngine == "parallel" {
			return fmt.Errorf("-baseline %s: GOMAXPROCS mismatch — baseline %d, this run %d; parallel rows measure scheduling capacity, rerun with GOMAXPROCS=%d or record a new baseline",
				baselinePath, base.GoMaxProcs, cur.GoMaxProcs, base.GoMaxProcs)
		}
		fmt.Printf("note: baseline GOMAXPROCS=%d, this run GOMAXPROCS=%d\n",
			base.GoMaxProcs, cur.GoMaxProcs)
	}
	baseBy := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}

	var regressed []string
	fmt.Printf("vs %s:\n", baselinePath)
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Printf("%-18s (new — no baseline entry)\n", r.Name)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		mark := ""
		if delta > tol {
			mark = "  <-- REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s ns/op %+.1f%%", r.Name, delta*100))
		}
		allocNote := ""
		if r.AllocsPerOp != b.AllocsPerOp {
			allocNote = fmt.Sprintf("  allocs %d -> %d", b.AllocsPerOp, r.AllocsPerOp)
			switch {
			case b.AllocsPerOp == 0 && r.AllocsPerOp > 0:
				regressed = append(regressed, fmt.Sprintf("%s allocs/op 0 -> %d", r.Name, r.AllocsPerOp))
				mark = "  <-- REGRESSION"
			case strings.Contains(r.Name, "/shards") && float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol):
				// Sharded rows gate allocation growth too, at the same
				// tolerance as ns/op: the cross-LP path is pooled, so a
				// sharded row's allocs/op is a budget — when it balloons,
				// something stopped reusing (outbox slabs, plan buffers,
				// payload banking), which wall time on a noisy runner can
				// hide.
				regressed = append(regressed, fmt.Sprintf("%s allocs/op %d -> %d (>%+.0f%%)",
					r.Name, b.AllocsPerOp, r.AllocsPerOp, tol*100))
				mark = "  <-- REGRESSION"
			}
		}
		fmt.Printf("%-18s %14.0f ns/op  %+7.1f%%%s%s\n", r.Name, r.NsPerOp, delta*100, allocNote, mark)
	}
	// Slack-floor drift is informational, never gating: the floors are
	// deterministic per shard count, so a delta flags a partition or
	// topology change worth knowing about, not a performance regression.
	if len(cur.SlackFloors) > 0 || len(base.SlackFloors) > 0 {
		keys := make(map[string]bool)
		for k := range cur.SlackFloors {
			keys[k] = true
		}
		for k := range base.SlackFloors {
			keys[k] = true
		}
		links := make([]string, 0, len(keys))
		for k := range keys {
			links = append(links, k)
		}
		sort.Strings(links)
		fmt.Println("slack floors (ns, informational):")
		for _, k := range links {
			c, cok := cur.SlackFloors[k]
			b, bok := base.SlackFloors[k]
			switch {
			case cok && bok && c == b:
				fmt.Printf("  %-12s %8d (unchanged)\n", k, c)
			case cok && bok:
				fmt.Printf("  %-12s %8d -> %d  <-- floor drift\n", k, b, c)
			case cok:
				fmt.Printf("  %-12s %8d (no baseline entry)\n", k, c)
			default:
				fmt.Printf("  %-12s %8d (gone from this run)\n", k, b)
			}
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("benchmark regression over %s: %s",
			baselinePath, strings.Join(regressed, "; "))
	}
	fmt.Printf("no regression beyond %.0f%%\n", tol*100)
	return nil
}
