package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"halsim/internal/experiments"
	"halsim/internal/nf"
	"halsim/internal/server"
	"halsim/internal/sim"
)

// benchResult is one measurement row of the BENCH_*.json snapshot.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchSnapshot is the machine-readable artifact the CI bench job uploads;
// diffing two snapshots is the regression check for the hot path.
type benchSnapshot struct {
	Timestamp string `json:"timestamp"`
	Quick     bool   `json:"quick"`
	Seed      int64  `json:"seed"`
	// Repeat is how many times each benchmark was measured; every result
	// row is the fastest of those runs (absent in pre-min-of-N snapshots).
	Repeat    int    `json:"repeat,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Execution-environment metadata: snapshots taken on different machines
	// or engine modes measure different things, so the -baseline gate
	// refuses to compare them silently. GoMaxProcs is the effective
	// parallelism (container quotas included); Shards and Engine say which
	// simulation engine ran ("serial" for 0/1 shards, "parallel" above).
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// NumCPU is the machine's logical CPU count, recorded so a snapshot
	// taken with an inflated GOMAXPROCS on a starved quota (say 4 on a
	// 1-CPU container) is honest about what actually ran concurrently.
	NumCPU  int           `json:"numcpu,omitempty"`
	Shards  int           `json:"shards,omitempty"`
	Engine  string        `json:"engine,omitempty"`
	Results []benchResult `json:"results"`
}

// engineLabel names the engine a shard count selects.
func engineLabel(shards int) string {
	if shards > 1 {
		return "parallel"
	}
	return "serial"
}

// regressionLimit is how much a benchmark's ns/op may grow over the
// baseline before the comparison fails the run.
const regressionLimit = 0.25

// runBenchSuite measures the regression-sentinel benchmarks (the three
// ModeNAT80G modes and the Table V matrix, mirroring bench_test.go) with
// testing.Benchmark and writes a JSON snapshot next to the ASCII summary.
// Each benchmark is measured repeat times and the snapshot keeps the
// fastest ns/op (and that run's B/op and allocs/op): min-of-N is the
// standard noise floor for a shared CI machine, so the -baseline gate
// compares best-case against best-case instead of failing on scheduler
// jitter. quick shrinks simulated durations so a CI run finishes in
// seconds. With a baseline snapshot the run also prints per-benchmark
// deltas and fails on a regression beyond regressionLimit.
func runBenchSuite(opt experiments.Options, quick bool, repeat int, outPath, baselinePath string) error {
	if repeat < 1 {
		repeat = 1
	}
	runDur := 20 * sim.Millisecond
	t5 := opt
	t5.Duration, t5.TraceDuration = 20*sim.Millisecond, 40*sim.Millisecond
	if quick {
		runDur = 5 * sim.Millisecond
		t5.Duration, t5.TraceDuration = 5*sim.Millisecond, 10*sim.Millisecond
	}

	modeBench := func(mode server.Mode, shards int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := server.Run(
					server.Config{Mode: mode, Fn: nf.NAT, Seed: opt.Seed, Shards: shards},
					server.RunConfig{Duration: runDur, RateGbps: 80})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed == 0 {
					b.Fatal("no packets completed")
				}
			}
		}
	}
	table5Bench := func(o experiments.Options) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := experiments.Table5(o)
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		}
	}
	t5Serial := t5
	t5Serial.Shards = 0
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ModeNAT80G/SNIC", modeBench(server.SNICOnly, 0)},
		{"ModeNAT80G/Host", modeBench(server.HostOnly, 0)},
		{"ModeNAT80G/HAL", modeBench(server.HAL, 0)},
		{"Table5", table5Bench(t5Serial)},
	}
	// A sharded invocation measures BOTH engines: the serial sentinels above
	// keep gating hot-path regressions like-for-like, and the /shardsN rows
	// record the parallel engine on the same workloads, so one snapshot
	// carries the serial baseline and the speedup (or, on a starved CPU
	// quota, the coordination overhead) side by side.
	if opt.Shards > 1 {
		benches = append(benches, []struct {
			name string
			fn   func(b *testing.B)
		}{
			{fmt.Sprintf("ModeNAT80G/HAL/shards%d", opt.Shards), modeBench(server.HAL, opt.Shards)},
			{fmt.Sprintf("Table5/shards%d", opt.Shards), table5Bench(t5)},
		}...)
	}

	snap := benchSnapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Quick:      quick,
		Seed:       opt.Seed,
		Repeat:     repeat,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     opt.Shards,
		Engine:     engineLabel(opt.Shards),
	}
	for _, nb := range benches {
		var best benchResult
		for rep := 0; rep < repeat; rep++ {
			r := testing.Benchmark(nb.fn)
			if r.N == 0 {
				return fmt.Errorf("bench %s: benchmark failed", nb.name)
			}
			br := benchResult{
				Name:        nb.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if rep == 0 || br.NsPerOp < best.NsPerOp {
				best = br
			}
		}
		snap.Results = append(snap.Results, best)
		fmt.Printf("%-18s %6d iter  %14.0f ns/op  %12d B/op  %10d allocs/op  (min of %d)\n",
			best.Name, best.Iterations, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, repeat)
	}

	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if baselinePath != "" {
		return compareBaseline(snap, baselinePath)
	}
	return nil
}

// compareBaseline diffs the fresh snapshot against a stored one: one line
// per shared benchmark with the ns/op and allocs/op deltas, then an error
// if any ns/op grew beyond regressionLimit. Allocation growth on the
// pinned-zero benchmarks is always a failure — the zero-alloc hot path is
// a correctness property here, not a performance preference.
func compareBaseline(cur benchSnapshot, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", baselinePath, err)
	}
	if base.Quick != cur.Quick {
		fmt.Printf("note: baseline quick=%v, this run quick=%v — deltas are indicative only\n",
			base.Quick, cur.Quick)
	}
	// Engine-mode mismatch: a serial baseline against a parallel run (or
	// different shard counts) compares two different execution strategies,
	// so the regression thresholds are meaningless — a /shardsN row diffed
	// against a serial measurement of the same sentinel "regresses" by the
	// coordination overhead, and a serial row vanishing behind a parallel
	// baseline hides real regressions. That used to be a warning; it is now
	// a hard failure, because a warning scrolled past in CI output is a
	// silent comparison. Cross-engine speedup lives inside ONE snapshot
	// (the serial sentinels next to the /shardsN rows), never across two.
	// Old snapshots predate the engine field; treat absence as serial.
	baseEngine, curEngine := base.Engine, cur.Engine
	if baseEngine == "" {
		baseEngine = engineLabel(base.Shards)
	}
	if curEngine == "" {
		curEngine = engineLabel(cur.Shards)
	}
	if baseEngine != curEngine || base.Shards != cur.Shards {
		return fmt.Errorf("-baseline %s: engine mode mismatch — baseline %s (shards=%d), this run %s (shards=%d); rerun with matching -shards (cross-engine speedup is read off the /shardsN rows inside one snapshot, not by diffing snapshots)",
			baselinePath, baseEngine, base.Shards, curEngine, cur.Shards)
	}
	// GOMAXPROCS is part of what a parallel measurement measures: the same
	// binary on the same machine is a different experiment at 1 proc than
	// at 4. For parallel snapshots a mismatch fails; serial rows are
	// single-threaded, so there it stays an advisory note.
	if base.GoMaxProcs != 0 && base.GoMaxProcs != cur.GoMaxProcs {
		if curEngine == "parallel" {
			return fmt.Errorf("-baseline %s: GOMAXPROCS mismatch — baseline %d, this run %d; parallel rows measure scheduling capacity, rerun with GOMAXPROCS=%d or record a new baseline",
				baselinePath, base.GoMaxProcs, cur.GoMaxProcs, base.GoMaxProcs)
		}
		fmt.Printf("note: baseline GOMAXPROCS=%d, this run GOMAXPROCS=%d\n",
			base.GoMaxProcs, cur.GoMaxProcs)
	}
	baseBy := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}

	var regressed []string
	fmt.Printf("vs %s:\n", baselinePath)
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Printf("%-18s (new — no baseline entry)\n", r.Name)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		mark := ""
		if delta > regressionLimit {
			mark = "  <-- REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s ns/op %+.1f%%", r.Name, delta*100))
		}
		allocNote := ""
		if r.AllocsPerOp != b.AllocsPerOp {
			allocNote = fmt.Sprintf("  allocs %d -> %d", b.AllocsPerOp, r.AllocsPerOp)
			if b.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
				regressed = append(regressed, fmt.Sprintf("%s allocs/op 0 -> %d", r.Name, r.AllocsPerOp))
				mark = "  <-- REGRESSION"
			}
		}
		fmt.Printf("%-18s %14.0f ns/op  %+7.1f%%%s%s\n", r.Name, r.NsPerOp, delta*100, allocNote, mark)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("benchmark regression over %s: %s",
			baselinePath, strings.Join(regressed, "; "))
	}
	fmt.Printf("no regression beyond %.0f%%\n", regressionLimit*100)
	return nil
}
