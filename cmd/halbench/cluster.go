package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"halsim/internal/cluster"
	"halsim/internal/experiments"
	"halsim/internal/nf"
	"halsim/internal/server"
	"halsim/internal/sim"
)

// runClusterSuite measures the fleet-scale sentinels: a whole HAL fleet
// (64 servers; 256 and a podded 1024 without -quick) behind one shared
// ingress with p2c dispatch, timed once on the serial engine and once on
// the parallel engine. Serial and /shardsN rows live in ONE snapshot, so the fleet
// speedup — the headline of the cluster work — is read off a single
// BENCH_cluster.json, never by diffing two files taken under different
// conditions. The shard count comes from -shards; with none given the
// suite picks 5 (one ingress LP plus four server-group LPs), the smallest
// split that exercises four real cores. -baseline gates ns/op growth at
// -baseline-tolerance like bench does.
func runClusterSuite(opt experiments.Options, quick bool, repeat int, tol float64, outPath, baselinePath string) error {
	if repeat < 1 {
		repeat = 1
	}
	shards := opt.Shards
	if shards <= 1 {
		shards = 5
	}
	dur := 6 * sim.Millisecond
	if quick {
		dur = 2 * sim.Millisecond
	}

	fleetBench := func(servers, pods int, rate float64, sh int, d sim.Time) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(
					server.Config{Mode: server.HAL, Fn: nf.NAT, Seed: opt.Seed, Shards: sh,
						Cluster: &server.ClusterConfig{Servers: servers, Dispatch: "p2c",
							Pods: pods, Oversub: 4}},
					server.RunConfig{Duration: d, RateGbps: rate})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed == 0 {
					b.Fatal("no packets completed")
				}
			}
		}
	}
	type fleetRow struct {
		servers, pods int
		dur           sim.Time
	}
	// Fleet1024 runs the two-tier pod fabric (8 pods, 4:1 oversubscribed
	// uplinks) over a shorter window so the non-quick suite stays minutes,
	// not tens of minutes; the flat-star sentinels keep their durations so
	// rows stay comparable against older baselines.
	rows := []fleetRow{{64, 0, dur}}
	if !quick {
		rows = append(rows, fleetRow{256, 0, dur}, fleetRow{1024, 8, sim.Millisecond})
	}
	fleets := make([]int, 0, len(rows))
	var benches []namedBench
	for _, fr := range rows {
		fleets = append(fleets, fr.servers)
		// Aggregate offered load scales with the fleet so per-server load
		// stays constant (6.25 Gbps each): the serial/parallel delta then
		// measures the engine, not a changing work mix.
		rate := 6.25 * float64(fr.servers)
		benches = append(benches,
			namedBench{fmt.Sprintf("Fleet%d/serial", fr.servers), fleetBench(fr.servers, fr.pods, rate, 0, fr.dur)},
			namedBench{fmt.Sprintf("Fleet%d/shards%d", fr.servers, shards), fleetBench(fr.servers, fr.pods, rate, shards, fr.dur)})
	}

	snap := benchSnapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Quick:      quick,
		Seed:       opt.Seed,
		Repeat:     repeat,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     shards,
		Engine:     engineLabel(shards),
	}
	serialNs := make(map[int]float64, len(fleets))
	for _, nb := range benches {
		best, err := measureBest(nb, repeat)
		if err != nil {
			return err
		}
		snap.Results = append(snap.Results, best)
		fmt.Printf("%-18s %6d iter  %14.0f ns/op  %12d B/op  %10d allocs/op  (min of %d)\n",
			best.Name, best.Iterations, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, repeat)
	}
	// The speedup summary CI greps for: ns/op ratio of the two engines on
	// the identical fleet (the results are byte-identical, so this is a
	// pure wall-clock comparison).
	for i, n := range fleets {
		serialNs[n] = snap.Results[2*i].NsPerOp
		if par := snap.Results[2*i+1].NsPerOp; par > 0 {
			fmt.Printf("Fleet%d speedup at shards=%d: %.2fx (GOMAXPROCS=%d, NumCPU=%d)\n",
				n, shards, serialNs[n]/par, snap.GoMaxProcs, snap.NumCPU)
		}
	}

	if outPath == "" {
		outPath = "BENCH_cluster.json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if baselinePath != "" {
		return compareBaseline(snap, baselinePath, tol)
	}
	return nil
}
