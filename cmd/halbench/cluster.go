package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"halsim/internal/cluster"
	"halsim/internal/experiments"
	"halsim/internal/nf"
	"halsim/internal/server"
	"halsim/internal/sim"
)

// runClusterSuite measures the fleet-scale sentinels: a whole HAL fleet
// (64 servers, and 256 without -quick) behind one shared ingress with p2c
// dispatch, timed once on the serial engine and once on the parallel
// engine. Serial and /shardsN rows live in ONE snapshot, so the fleet
// speedup — the headline of the cluster work — is read off a single
// BENCH_cluster.json, never by diffing two files taken under different
// conditions. The shard count comes from -shards; with none given the
// suite picks 5 (one ingress LP plus four server-group LPs), the smallest
// split that exercises four real cores. -baseline gates ns/op growth at
// -baseline-tolerance like bench does.
func runClusterSuite(opt experiments.Options, quick bool, repeat int, tol float64, outPath, baselinePath string) error {
	if repeat < 1 {
		repeat = 1
	}
	shards := opt.Shards
	if shards <= 1 {
		shards = 5
	}
	dur := 6 * sim.Millisecond
	if quick {
		dur = 2 * sim.Millisecond
	}

	fleetBench := func(servers int, rate float64, sh int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(
					server.Config{Mode: server.HAL, Fn: nf.NAT, Seed: opt.Seed, Shards: sh,
						Cluster: &server.ClusterConfig{Servers: servers, Dispatch: "p2c"}},
					server.RunConfig{Duration: dur, RateGbps: rate})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed == 0 {
					b.Fatal("no packets completed")
				}
			}
		}
	}
	fleets := []int{64}
	if !quick {
		fleets = append(fleets, 256)
	}
	var benches []namedBench
	for _, n := range fleets {
		// Aggregate offered load scales with the fleet so per-server load
		// stays constant (6.25 Gbps each): the serial/parallel delta then
		// measures the engine, not a changing work mix.
		rate := 6.25 * float64(n)
		benches = append(benches,
			namedBench{fmt.Sprintf("Fleet%d/serial", n), fleetBench(n, rate, 0)},
			namedBench{fmt.Sprintf("Fleet%d/shards%d", n, shards), fleetBench(n, rate, shards)})
	}

	snap := benchSnapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Quick:      quick,
		Seed:       opt.Seed,
		Repeat:     repeat,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     shards,
		Engine:     engineLabel(shards),
	}
	serialNs := make(map[int]float64, len(fleets))
	for _, nb := range benches {
		best, err := measureBest(nb, repeat)
		if err != nil {
			return err
		}
		snap.Results = append(snap.Results, best)
		fmt.Printf("%-18s %6d iter  %14.0f ns/op  %12d B/op  %10d allocs/op  (min of %d)\n",
			best.Name, best.Iterations, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, repeat)
	}
	// The speedup summary CI greps for: ns/op ratio of the two engines on
	// the identical fleet (the results are byte-identical, so this is a
	// pure wall-clock comparison).
	for i, n := range fleets {
		serialNs[n] = snap.Results[2*i].NsPerOp
		if par := snap.Results[2*i+1].NsPerOp; par > 0 {
			fmt.Printf("Fleet%d speedup at shards=%d: %.2fx (GOMAXPROCS=%d, NumCPU=%d)\n",
				n, shards, serialNs[n]/par, snap.GoMaxProcs, snap.NumCPU)
		}
	}

	if outPath == "" {
		outPath = "BENCH_cluster.json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if baselinePath != "" {
		return compareBaseline(snap, baselinePath, tol)
	}
	return nil
}
