// Command halbench regenerates every table and figure of the HAL paper's
// evaluation and prints them as aligned ASCII tables.
//
// Usage:
//
//	halbench [-quick] [-seed N] [-shards N] [-csv] [-cpuprofile f] [-memprofile f] [experiment ...]
//
// With no experiment arguments it runs all of them. Valid names: tab1,
// fig2, fig3, fig4, fig5, fig8, fig9, fig10, tab2, tab5, costs, ablation,
// faults, validate.
//
// The extra experiment name "bench" runs the regression-sentinel
// benchmarks (ModeNAT80G per mode, Table V) under testing.Benchmark and
// writes a BENCH_*.json snapshot (override the path with -benchout); CI
// runs `halbench -quick bench` and archives the snapshot per commit.
// Passing -baseline BENCH_x.json additionally diffs the fresh snapshot
// against the stored one and exits nonzero on an ns/op regression beyond
// -baseline-tolerance percent (default 25), or on any allocation growth
// on a previously zero-alloc benchmark.
//
// The experiment name "cluster" runs the fleet-scale sentinels — a
// 64-server (and, without -quick, 256-server) HAL fleet behind a shared
// ingress — once on the serial engine and once on the parallel engine,
// and writes BENCH_cluster.json (override with -benchout). Both rows
// live in one snapshot so the fleet speedup is read off a single file;
// -baseline and -baseline-tolerance gate it like bench.
//
// Exit codes (shared with halsim, see internal/cliutil): 0 success,
// 1 runtime failure / failed validation run / -baseline regression,
// 2 usage error (unknown experiment, bad flag, invalid fault plan).
//
// -shards N (N > 1) runs every simulation on the conservative-parallel
// engine; results are byte-identical to serial runs, only wall time
// changes. Snapshots record GOMAXPROCS, the CPU count, the shard count,
// and the engine mode; -baseline fails (does not warn) when the two
// snapshots' engine modes or shard counts differ, and when a parallel
// run is diffed against a baseline taken at a different GOMAXPROCS —
// those comparisons measure the execution strategy, not a regression.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"halsim/internal/cliutil"
	"halsim/internal/experiments"
	"halsim/internal/server"
	"halsim/internal/sim"
	"halsim/internal/version"
)

var emitCSV bool

// emit prints a table in the selected format.
func emit(t experiments.Table) {
	if emitCSV {
		fmt.Print(t.CSV())
		fmt.Println()
		return
	}
	fmt.Println(t.Render())
}

func main() {
	quick := flag.Bool("quick", false, "shorter simulations (noisier numbers)")
	seed := flag.Int64("seed", 1, "simulation seed")
	shards := flag.Int("shards", 0, "run simulations on the parallel engine with this many shards (0/1 = serial; results are byte-identical)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchOut := flag.String("benchout", "", "bench: JSON snapshot path (default BENCH_<timestamp>.json)")
	baseline := flag.String("baseline", "", "bench/cluster: compare against this BENCH_*.json snapshot; exit nonzero on an ns/op regression beyond -baseline-tolerance")
	baselineTol := flag.Float64("baseline-tolerance", 25, "bench/cluster: percent a benchmark's ns/op may grow over -baseline before the run fails")
	benchN := flag.Int("benchN", 3, "bench: measure each benchmark this many times and keep the fastest run")
	prof := flag.Bool("prof", false, "bench: print the parallel engine's flight-recorder summary for the sentinels (needs -shards > 1)")
	showVersion := flag.Bool("version", false, "print the build commit and exit")
	flag.Parse()
	if *showVersion {
		fmt.Printf("halbench %s\n", version.String())
		return
	}
	emitCSV = *csv
	// run returns instead of calling os.Exit so the profile defers flush.
	os.Exit(run(*quick, *seed, *shards, *benchN, *prof, *baselineTol, *cpuprofile, *memprofile, *benchOut, *baseline, flag.Args()))
}

func run(quick bool, seed int64, shards, benchN int, prof bool, baselineTol float64, cpuprofile, memprofile, benchOut, baseline string, names []string) int {
	if baselineTol < 0 {
		fmt.Fprintln(os.Stderr, "halbench: -baseline-tolerance must be >= 0 (a percentage)")
		return cliutil.ExitUsage
	}
	tol := baselineTol / 100
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "halbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "halbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "halbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "halbench: -memprofile: %v\n", err)
			}
		}()
	}

	opt := experiments.Options{Seed: seed, Shards: shards}
	if quick {
		opt.Duration = 80 * sim.Millisecond
		opt.TraceDuration = 200 * sim.Millisecond
	}

	runners := map[string]func(experiments.Options) error{
		"tab1": func(experiments.Options) error {
			emit(experiments.Table1())
			return nil
		},
		"fig2": func(o experiments.Options) error {
			r, err := experiments.CompareSNICHost(o)
			if err != nil {
				return err
			}
			emit(r.Fig2())
			return nil
		},
		"fig3": func(o experiments.Options) error {
			r, err := experiments.CompareSNICHost(o)
			if err != nil {
				return err
			}
			emit(r.Fig3())
			return nil
		},
		"fig4": func(o experiments.Options) error {
			rs, err := experiments.Fig4(o)
			if err != nil {
				return err
			}
			for _, r := range rs {
				for _, t := range r.Tables() {
					emit(t)
				}
				fmt.Printf("SNIC energy-efficiency crossover for %v: %.0f Gbps\n\n",
					r.Fn, r.CrossoverGbps(server.SNICOnly, server.HostOnly))
			}
			return nil
		},
		"fig5": func(o experiments.Options) error {
			r, err := experiments.Fig5(o)
			if err != nil {
				return err
			}
			emit(r.Table())
			return nil
		},
		"fig8": func(o experiments.Options) error {
			emit(experiments.Fig8(o))
			return nil
		},
		"fig9": func(o experiments.Options) error {
			rs, err := experiments.Fig9(o)
			if err != nil {
				return err
			}
			for _, r := range rs {
				for _, t := range r.Tables() {
					emit(t)
				}
			}
			return nil
		},
		"fig10": func(o experiments.Options) error {
			r, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			emit(r.Table())
			return nil
		},
		"tab2": func(o experiments.Options) error {
			r, err := experiments.Table2(o)
			if err != nil {
				return err
			}
			emit(r.Table())
			return nil
		},
		"tab5": func(o experiments.Options) error {
			r, err := experiments.Table5(o)
			if err != nil {
				return err
			}
			emit(r.Table())
			emit(r.SummaryTable())
			return nil
		},
		"costs": func(o experiments.Options) error {
			r, err := experiments.Costs(o)
			if err != nil {
				return err
			}
			emit(r.Table())
			return nil
		},
		"ablation": func(o experiments.Options) error {
			for _, f := range []func(experiments.Options) (experiments.AblationResult, error){
				experiments.AblationLBP,
				experiments.AblationWatermarks,
				experiments.AblationMonitorPeriod,
				experiments.AblationPacketSize,
				experiments.AblationFunctionMix,
			} {
				r, err := f(o)
				if err != nil {
					return err
				}
				emit(r.Table())
			}
			emit(experiments.DVFSEstimate())
			return nil
		},
		"faults": func(o experiments.Options) error {
			r, err := experiments.Faults(o)
			if err != nil {
				return err
			}
			emit(r.Table())
			for _, p := range r.Points {
				if !p.LedgerOK() {
					return fmt.Errorf("packet ledger leak in %s/%s: %d sent, %d completed, %d dropped, %d in flight",
						p.Name, p.Fn, p.Sent, p.Completed, p.Dropped, p.InFlight)
				}
			}
			return nil
		},
		"validate": func(o experiments.Options) error {
			r, err := experiments.Validate(o)
			if err != nil {
				return err
			}
			emit(r.Table())
			if !r.Passed() {
				return fmt.Errorf("validation failed")
			}
			return nil
		},
	}
	runners["bench"] = func(o experiments.Options) error {
		return runBenchSuite(o, quick, benchN, prof, tol, benchOut, baseline)
	}
	runners["cluster"] = func(o experiments.Options) error {
		return runClusterSuite(o, quick, benchN, tol, benchOut, baseline)
	}
	order := []string{"tab1", "fig2", "fig3", "fig4", "tab2", "fig5", "fig8", "fig9", "tab5", "fig10", "costs", "ablation", "faults", "validate"}

	if len(names) == 0 {
		names = order
	}
	for _, name := range names {
		runner, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "halbench: unknown experiment %q (valid: %v, plus bench and cluster)\n", name, order)
			return cliutil.ExitUsage
		}
		start := time.Now()
		if err := runner(opt); err != nil {
			fmt.Fprintf(os.Stderr, "halbench: %s: %v\n", name, err)
			// Validation errors (a fault plan that failed Validate) exit 2
			// like every other usage mistake; runtime failures exit 1.
			return cliutil.ExitCode(err)
		}
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
