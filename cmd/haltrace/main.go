// Command haltrace inspects the synthetic datacenter traffic generators
// (Fig. 8): it prints trace snapshots, summary statistics, and the
// link-utilization CDF for each workload.
//
// Usage:
//
//	haltrace [-workload web|cache|hadoop] [-epochs N] [-seed N] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"halsim/internal/stats"
	"halsim/internal/trace"
	"halsim/internal/version"
)

func main() {
	var (
		workload    = flag.String("workload", "", "limit to one workload (default: all)")
		epochs      = flag.Int("epochs", 10000, "epochs to synthesize")
		seed        = flag.Int64("seed", 1, "generator seed")
		plot        = flag.Bool("plot", false, "print an ASCII rate strip of the first 60 epochs")
		fit         = flag.Bool("fit", false, "re-fit lognormal (mu, sigma) to the synthesized trace")
		showVersion = flag.Bool("version", false, "print the build commit and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("haltrace %s\n", version.String())
		return
	}

	ws := trace.Workloads
	if *workload != "" {
		switch strings.ToLower(*workload) {
		case "web":
			ws = []trace.Workload{trace.Web}
		case "cache":
			ws = []trace.Workload{trace.Cache}
		case "hadoop":
			ws = []trace.Workload{trace.Hadoop}
		default:
			fmt.Fprintf(os.Stderr, "haltrace: unknown workload %q (want web, cache, or hadoop)\n\n", *workload)
			flag.Usage()
			os.Exit(2)
		}
	}

	for _, w := range ws {
		p := trace.ParamsFor(w)
		g := trace.NewWorkloadGenerator(w, *seed)
		snap := g.Snapshot(*epochs)
		s := trace.Summarize(snap)
		fmt.Printf("%s: lognormal(mu=%.2f sigma=%.2f), target avg %.1f Gbps\n",
			w, p.Mu, p.Sigma, p.AvgGbps)
		fmt.Printf("  %d epochs: mean %.2f  p50 %.2f  p99 %.1f  max %.1f Gbps\n",
			*epochs, s.Mean, s.P50, s.P99, s.Max)
		th := []float64{0.1, 0.5, 1, 2, 5, 10, 25, 50, 100}
		cdf := trace.CDF(snap, th)
		fmt.Print("  CDF:")
		for i, t := range th {
			fmt.Printf(" <=%g:%.3f", t, cdf[i])
		}
		fmt.Println()
		if *fit {
			if mu, sigma, ok := trace.FitLogNormal(snap); ok {
				fmt.Printf("  refit: mu=%.2f sigma=%.2f (sigma should match the target shape)\n", mu, sigma)
			}
		}
		if *plot {
			fmt.Println("  first 60 epochs (each # = 2 Gbps):")
			for i := 0; i < 60 && i < len(snap); i++ {
				fmt.Printf("  %3d %6.2fG %s\n", i, snap[i], stats.Bar(snap[i], 100, 50))
			}
		}
		fmt.Println()
	}
}
